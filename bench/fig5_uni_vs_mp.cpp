/**
 * @file
 * Figure 5: relative importance of execution-time components in
 * uniprocessor versus multiprocessor systems, for OLTP and DSS.
 *
 * Paper shape targets: in the uniprocessor, OLTP's instruction stall is
 * a larger share (no communication misses); the multiprocessor adds a
 * larger read component for both workloads (dirty misses for OLTP).
 * Bars are composition (percent of each system's own execution time).
 *
 * Usage: fig5_uni_vs_mp [--jobs N] [--json PATH]
 *        plus the shared fault-tolerance flags (bench_util.hpp):
 *        [--journal PATH|none] [--resume JOURNAL] [--on-failure abort|collect]
 *        [--max-retries N] [--item-timeout-sec S]
 */

#include <iostream>

#include "bench_util.hpp"

#include "core/cli_guard.hpp"

static int
run(const dbsim::bench::BenchOptions &opts)
{
    using namespace dbsim;

    bench::BenchContext ctx("fig5_uni_vs_mp", opts);
    for (const auto kind :
         {core::WorkloadKind::Oltp, core::WorkloadKind::Dss}) {
        const char *wname = core::workloadName(kind);
        const auto results = ctx.sweep(
            wname,
            {{"uniprocessor", core::makeScaledConfig(kind, 1)},
             {"multiprocessor(4)", core::makeScaledConfig(kind, 4)}});

        const auto rows = bench::rowsOf(results);
        core::printHeader(std::cout,
                          std::string("Figure 5: ") + wname +
                              " composition (percent of own total)");
        core::printCompositionBars(std::cout, rows);
        std::cout << "\nread-stall magnification "
                     "(normalized to uniprocessor total):\n";
        core::printReadStallBars(std::cout, rows);
    }
    return ctx.finish();
}

int
main(int argc, char **argv)
{
    return dbsim::core::guardedMain(
        [&] { return run(dbsim::bench::parseBenchArgs(argc, argv)); });
}
