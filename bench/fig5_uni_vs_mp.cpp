/**
 * @file
 * Figure 5: relative importance of execution-time components in
 * uniprocessor versus multiprocessor systems, for OLTP and DSS.
 *
 * Paper shape targets: in the uniprocessor, OLTP's instruction stall is
 * a larger share (no communication misses); the multiprocessor adds a
 * larger read component for both workloads (dirty misses for OLTP).
 * Bars are composition (percent of each system's own execution time).
 */

#include <iostream>

#include "bench_util.hpp"

#include "core/cli_guard.hpp"

static int
run()
{
    using namespace dbsim;

    for (const auto kind :
         {core::WorkloadKind::Oltp, core::WorkloadKind::Dss}) {
        std::vector<core::BreakdownRow> rows;

        core::SimConfig uni = core::makeScaledConfig(kind, 1);
        rows.push_back(bench::runConfig(uni, "uniprocessor").row);

        core::SimConfig mp = core::makeScaledConfig(kind, 4);
        rows.push_back(bench::runConfig(mp, "multiprocessor(4)").row);

        core::printHeader(std::cout,
                          std::string("Figure 5: ") +
                              core::workloadName(kind) +
                              " composition (percent of own total)");
        core::printCompositionBars(std::cout, rows);
        std::cout << "\nread-stall magnification "
                     "(normalized to uniprocessor total):\n";
        core::printReadStallBars(std::cout, rows);
    }
    return 0;
}

int
main()
{
    return dbsim::core::guardedMain([] { return run(); });
}
