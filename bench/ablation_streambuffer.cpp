/**
 * @file
 * Ablation (paper section 4.1, last paragraphs): the stream buffer
 * versus the architectural alternative of a larger transfer unit
 * between L1 and L2.  The paper reports that 128-byte lines achieve
 * comparable miss-rate reductions but without the stream buffer's
 * ability to adapt to longer streams or avoid displacing useful data.
 *
 * Our hierarchy shares one line size across levels, so the comparison
 * point is a whole-hierarchy 128-byte-line configuration (which also
 * doubles the coherence granularity -- noted in EXPERIMENTS.md).
 *
 * Usage: ablation_streambuffer [--jobs N] [--json PATH]
 *        plus the shared fault-tolerance flags (bench_util.hpp):
 *        [--journal PATH|none] [--resume JOURNAL] [--on-failure abort|collect]
 *        [--max-retries N] [--item-timeout-sec S]
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"

#include "core/cli_guard.hpp"

static int
run(const dbsim::bench::BenchOptions &opts)
{
    using namespace dbsim;

    core::SimConfig base = core::makeScaledConfig(core::WorkloadKind::Oltp);

    core::SimConfig sbuf = base;
    sbuf.system.node.stream_buffer_entries = 4;

    core::SimConfig wide = base;
    for (auto *lvl : {&wide.system.node.l1i, &wide.system.node.l1d,
                      &wide.system.node.l2}) {
        lvl->line_bytes = 128;
    }
    wide.system.core.fetch_line_bytes = 128;

    bench::BenchContext ctx("ablation_streambuffer", opts);
    const auto results =
        ctx.sweep("line-size", {{"base 64B lines", base},
                                {"64B + sbuf-4", sbuf},
                                {"128B lines (no sbuf)", wide}});

    const auto rows = bench::rowsOf(results);
    core::printHeader(std::cout,
                      "Ablation: stream buffer vs 128-byte lines (OLTP)");
    core::printExecutionBars(std::cout, rows);
    std::cout << "\nL1I miss per fetch-line request:\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        std::printf("  %-24s %.4f\n", rows[i].label.c_str(),
                    double(results[i].node0.l1i_misses) /
                        double(results[i].node0.l1i_fetches));
    }
    return ctx.finish();
}

int
main(int argc, char **argv)
{
    return dbsim::core::guardedMain(
        [&] { return run(dbsim::bench::parseBenchArgs(argc, argv)); });
}
