/**
 * @file
 * Ablation (paper section 4.1, last paragraphs): the stream buffer
 * versus the architectural alternative of a larger transfer unit
 * between L1 and L2.  The paper reports that 128-byte lines achieve
 * comparable miss-rate reductions but without the stream buffer's
 * ability to adapt to longer streams or avoid displacing useful data.
 *
 * Our hierarchy shares one line size across levels, so the comparison
 * point is a whole-hierarchy 128-byte-line configuration (which also
 * doubles the coherence granularity -- noted in EXPERIMENTS.md).
 */

#include <iostream>

#include "bench_util.hpp"

#include "core/cli_guard.hpp"

static int
run()
{
    using namespace dbsim;
    std::vector<core::BreakdownRow> rows;
    std::vector<double> l1i_rates;

    core::SimConfig base = core::makeScaledConfig(core::WorkloadKind::Oltp);
    {
        const auto out = bench::runConfig(base, "base 64B lines");
        rows.push_back(out.row);
        l1i_rates.push_back(double(out.node0.l1i_misses) /
                            double(out.node0.l1i_fetches));
    }

    core::SimConfig sbuf = base;
    sbuf.system.node.stream_buffer_entries = 4;
    {
        const auto out = bench::runConfig(sbuf, "64B + sbuf-4");
        rows.push_back(out.row);
        l1i_rates.push_back(double(out.node0.l1i_misses) /
                            double(out.node0.l1i_fetches));
    }

    core::SimConfig wide = base;
    for (auto *lvl : {&wide.system.node.l1i, &wide.system.node.l1d,
                      &wide.system.node.l2}) {
        lvl->line_bytes = 128;
    }
    wide.system.core.fetch_line_bytes = 128;
    {
        const auto out = bench::runConfig(wide, "128B lines (no sbuf)");
        rows.push_back(out.row);
        l1i_rates.push_back(double(out.node0.l1i_misses) /
                            double(out.node0.l1i_fetches));
    }

    core::printHeader(std::cout,
                      "Ablation: stream buffer vs 128-byte lines (OLTP)");
    core::printExecutionBars(std::cout, rows);
    std::cout << "\nL1I miss per fetch-line request:\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        std::printf("  %-24s %.4f\n", rows[i].label.c_str(),
                    l1i_rates[i]);
    }
    return 0;
}

int
main()
{
    return dbsim::core::guardedMain([] { return run(); });
}
