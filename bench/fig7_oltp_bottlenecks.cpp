/**
 * @file
 * Figure 7: addressing the OLTP instruction and data-communication
 * bottlenecks.
 *
 * (a) Instruction stream buffers of 2/4/8 entries between the L1I and
 *     L2, against a perfect instruction cache (and perfect iTLB) upper
 *     bound.  Paper shape targets: a 2-element buffer removes ~64% of
 *     L1I misses, 4 elements ~10% more; execution time improves 16-17%,
 *     within ~15% of the perfect-icache configuration.  With --uni the
 *     same sweep runs on a uniprocessor, where the gains are larger
 *     (22-27%).
 *
 * (b) Software prefetch and flush (WriteThrough) hints for migratory
 *     data, on top of a 4-entry stream buffer.  Paper shape targets:
 *     flush hints ~7.5% (bound ~9%, approximated by discounting
 *     migratory read latency 40%); flush+prefetch ~12% cumulative.
 */

#include <cstring>
#include <iostream>

#include "bench_util.hpp"

#include "core/cli_guard.hpp"

using namespace dbsim;

namespace {

void
partA(std::uint32_t nodes)
{
    std::vector<core::BreakdownRow> rows;
    std::vector<double> miss_rates;

    core::SimConfig base =
        core::makeScaledConfig(core::WorkloadKind::Oltp, nodes);
    // "Effective" L1I miss rate: tag misses the stream buffer did NOT
    // cover (the paper's miss-rate-reduction metric counts buffer hits
    // as removed misses).
    auto effective_rate = [](const bench::RunOut &out) {
        return double(out.node0.l1i_misses - out.node0.l1i_sbuf_hits) /
               double(out.node0.l1i_fetches);
    };
    {
        const auto out = bench::runConfig(base, "base (no sbuf)");
        rows.push_back(out.row);
        miss_rates.push_back(effective_rate(out));
    }
    for (const std::uint32_t entries : {2u, 4u, 8u}) {
        core::SimConfig cfg = base;
        cfg.system.node.stream_buffer_entries = entries;
        char label[32];
        std::snprintf(label, sizeof(label), "sbuf-%u", entries);
        const auto out = bench::runConfig(cfg, label);
        rows.push_back(out.row);
        miss_rates.push_back(effective_rate(out));
    }
    {
        core::SimConfig cfg = base;
        cfg.system.node.perfect_icache = true;
        rows.push_back(bench::runConfig(cfg, "perfect icache").row);
        miss_rates.push_back(0.0);
    }
    {
        core::SimConfig cfg = base;
        cfg.system.node.perfect_icache = true;
        cfg.system.node.perfect_itlb = true;
        rows.push_back(
            bench::runConfig(cfg, "perfect icache+iTLB").row);
        miss_rates.push_back(0.0);
    }

    char title[96];
    std::snprintf(title, sizeof(title),
                  "Figure 7(a): instruction stream buffer, %u node%s",
                  nodes, nodes == 1 ? "" : "s");
    core::printHeader(std::cout, title);
    core::printExecutionBars(std::cout, rows);
    std::cout << "\nL1I effective miss rate per fetch-line request\n"
                 "(misses not covered by the stream buffer):\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        std::printf("  %-22s %.4f", rows[i].label.c_str(), miss_rates[i]);
        if (i > 0 && miss_rates[0] > 0.0) {
            std::printf("  (%.0f%% of base misses removed)",
                        100.0 * (1.0 - miss_rates[i] / miss_rates[0]));
        }
        std::printf("\n");
    }
}

void
partB()
{
    std::vector<core::BreakdownRow> rows;

    core::SimConfig base = core::makeScaledConfig(core::WorkloadKind::Oltp);
    base.system.node.stream_buffer_entries = 4;
    rows.push_back(bench::runConfig(base, "base + sbuf-4").row);

    core::SimConfig flush = base;
    flush.hint_flush = true;
    rows.push_back(bench::runConfig(flush, "+ flush hints").row);

    core::SimConfig bound = base;
    bound.system.fabric.migratory_read_factor = 0.6;
    rows.push_back(
        bench::runConfig(bound, "bound: migratory reads -40%").row);

    core::SimConfig pf_only = base;
    pf_only.hint_prefetch = true;
    rows.push_back(bench::runConfig(pf_only, "+ prefetch only").row);

    core::SimConfig both = base;
    both.hint_flush = true;
    both.hint_prefetch = true;
    rows.push_back(bench::runConfig(both, "+ flush + prefetch").row);

    core::printHeader(std::cout,
                      "Figure 7(b): migratory data hints "
                      "(base assumes 4-entry stream buffer)");
    core::printExecutionBars(std::cout, rows);
    std::cout << "\nread-stall magnification:\n";
    core::printReadStallBars(std::cout, rows);
}

} // namespace

static int
run(int argc, char **argv)
{
    bool uni = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--uni"))
            uni = true;
    }
    partA(uni ? 1 : 4);
    if (!uni)
        partB();
    return 0;
}

int
main(int argc, char **argv)
{
    return dbsim::core::guardedMain([&] { return run(argc, argv); });
}
