/**
 * @file
 * Figure 7: addressing the OLTP instruction and data-communication
 * bottlenecks.
 *
 * (a) Instruction stream buffers of 2/4/8 entries between the L1I and
 *     L2, against a perfect instruction cache (and perfect iTLB) upper
 *     bound.  Paper shape targets: a 2-element buffer removes ~64% of
 *     L1I misses, 4 elements ~10% more; execution time improves 16-17%,
 *     within ~15% of the perfect-icache configuration.  With --uni the
 *     same sweep runs on a uniprocessor, where the gains are larger
 *     (22-27%).
 *
 * (b) Software prefetch and flush (WriteThrough) hints for migratory
 *     data, on top of a 4-entry stream buffer.  Paper shape targets:
 *     flush hints ~7.5% (bound ~9%, approximated by discounting
 *     migratory read latency 40%); flush+prefetch ~12% cumulative.
 *
 * Usage: fig7_oltp_bottlenecks [--uni] [--jobs N] [--json PATH]
 *        plus the shared fault-tolerance flags (bench_util.hpp):
 *        [--journal PATH|none] [--resume JOURNAL] [--on-failure abort|collect]
 *        [--max-retries N] [--item-timeout-sec S]
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"

#include "core/cli_guard.hpp"

using namespace dbsim;

namespace {

void
partA(bench::BenchContext &ctx, std::uint32_t nodes)
{
    std::vector<core::SweepItem> items;

    core::SimConfig base =
        core::makeScaledConfig(core::WorkloadKind::Oltp, nodes);
    items.push_back({"base (no sbuf)", base});
    for (const std::uint32_t entries : {2u, 4u, 8u}) {
        core::SimConfig cfg = base;
        cfg.system.node.stream_buffer_entries = entries;
        char label[32];
        std::snprintf(label, sizeof(label), "sbuf-%u", entries);
        items.push_back({label, cfg});
    }
    {
        core::SimConfig cfg = base;
        cfg.system.node.perfect_icache = true;
        items.push_back({"perfect icache", cfg});
    }
    {
        core::SimConfig cfg = base;
        cfg.system.node.perfect_icache = true;
        cfg.system.node.perfect_itlb = true;
        items.push_back({"perfect icache+iTLB", cfg});
    }

    const auto results = ctx.sweep("a-stream-buffer", items);

    // "Effective" L1I miss rate: tag misses the stream buffer did NOT
    // cover (the paper's miss-rate-reduction metric counts buffer hits
    // as removed misses).  The perfect-icache rows have none.
    std::vector<double> miss_rates;
    for (const auto &r : results) {
        miss_rates.push_back(
            r.cfg.system.node.perfect_icache
                ? 0.0
                : double(r.node0.l1i_misses - r.node0.l1i_sbuf_hits) /
                      double(r.node0.l1i_fetches));
    }

    char title[96];
    std::snprintf(title, sizeof(title),
                  "Figure 7(a): instruction stream buffer, %u node%s",
                  nodes, nodes == 1 ? "" : "s");
    core::printHeader(std::cout, title);
    const auto rows = bench::rowsOf(results);
    core::printExecutionBars(std::cout, rows);
    std::cout << "\nL1I effective miss rate per fetch-line request\n"
                 "(misses not covered by the stream buffer):\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        std::printf("  %-22s %.4f", rows[i].label.c_str(), miss_rates[i]);
        if (i > 0 && miss_rates[0] > 0.0) {
            std::printf("  (%.0f%% of base misses removed)",
                        100.0 * (1.0 - miss_rates[i] / miss_rates[0]));
        }
        std::printf("\n");
    }
}

void
partB(bench::BenchContext &ctx)
{
    core::SimConfig base = core::makeScaledConfig(core::WorkloadKind::Oltp);
    base.system.node.stream_buffer_entries = 4;

    core::SimConfig flush = base;
    flush.hint_flush = true;

    core::SimConfig bound = base;
    bound.system.fabric.migratory_read_factor = 0.6;

    core::SimConfig pf_only = base;
    pf_only.hint_prefetch = true;

    core::SimConfig both = base;
    both.hint_flush = true;
    both.hint_prefetch = true;

    const auto results = ctx.sweep(
        "b-migratory-hints",
        {{"base + sbuf-4", base},
         {"+ flush hints", flush},
         {"bound: migratory reads -40%", bound},
         {"+ prefetch only", pf_only},
         {"+ flush + prefetch", both}});

    const auto rows = bench::rowsOf(results);
    core::printHeader(std::cout,
                      "Figure 7(b): migratory data hints "
                      "(base assumes 4-entry stream buffer)");
    core::printExecutionBars(std::cout, rows);
    std::cout << "\nread-stall magnification:\n";
    core::printReadStallBars(std::cout, rows);
}

} // namespace

static int
run(const bench::BenchOptions &opts)
{
    const bool uni = opts.has("--uni");
    bench::BenchContext ctx("fig7_oltp_bottlenecks", opts);
    partA(ctx, uni ? 1 : 4);
    if (!uni)
        partB(ctx);
    return ctx.finish();
}

int
main(int argc, char **argv)
{
    return dbsim::core::guardedMain(
        [&] { return run(dbsim::bench::parseBenchArgs(argc, argv)); });
}
