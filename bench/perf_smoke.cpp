/**
 * @file
 * Simulator performance smoke: runs a fixed set of OLTP and DSS
 * configurations and writes an aggregated machine-readable report to
 * BENCH_sim_perf.json (override with --json PATH).  CI runs this on
 * every push so simulator-throughput regressions show up as a diffable
 * artifact; the headline metric is simulated instructions per host
 * second for each configuration.
 *
 * Usage: perf_smoke [--jobs N] [--json PATH]
 *        plus the shared fault-tolerance flags (bench_util.hpp):
 *        [--journal PATH|none] [--resume JOURNAL] [--on-failure abort|collect]
 *        [--max-retries N] [--item-timeout-sec S]
 *        and the checkpoint/epoch-hash flags (DESIGN.md §5g):
 *        [--checkpoint-dir DIR] [--checkpoint-interval CYCLES]
 *        [--state-hash-interval CYCLES] [--restore]
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"

#include "core/cli_guard.hpp"

static int
run(dbsim::bench::BenchOptions opts)
{
    using namespace dbsim;

    if (opts.json_path.empty())
        opts.json_path = "BENCH_sim_perf.json";

    bench::BenchContext ctx("perf_smoke", opts);

    std::vector<core::SweepItem> items;
    for (const auto kind :
         {core::WorkloadKind::Oltp, core::WorkloadKind::Dss}) {
        for (const std::uint32_t nodes : {4u, 1u}) {
            char label[32];
            std::snprintf(label, sizeof(label), "%s-%unode",
                          core::workloadName(kind), nodes);
            items.push_back({label, core::makeScaledConfig(kind, nodes)});
        }
    }

    const auto results = ctx.sweep("perf", items);

    core::printHeader(std::cout, "Simulator performance smoke");
    std::printf("  jobs: %u\n\n", ctx.runner().jobs());
    std::printf("  %-14s %12s %12s %6s %9s %14s\n", "config", "cycles",
                "instrs", "IPC", "wall [s]", "Minstr/host-s");
    for (const auto &r : results) {
        std::printf("  %-14s %12llu %12llu %6.2f %9.3f %14.2f\n",
                    r.label.c_str(),
                    static_cast<unsigned long long>(r.run.cycles),
                    static_cast<unsigned long long>(r.run.instructions),
                    r.run.ipc, r.wall_seconds, r.sim_ips / 1e6);
    }
    // finish() returns nonzero when the JSON report could not be
    // written (or items failed under collect/retry); CI keys off the
    // exit code, so never announce a report that is not actually there.
    const int code = ctx.finish();
    if (code == 0)
        std::cout << "\nreport: " << opts.json_path << "\n";
    else
        std::cerr << "perf_smoke: finishing with exit code " << code
                  << " (report " << opts.json_path << " is stale or "
                  << "incomplete)\n";
    return code;
}

int
main(int argc, char **argv)
{
    return dbsim::core::guardedMain(
        [&] { return run(dbsim::bench::parseBenchArgs(argc, argv)); });
}
